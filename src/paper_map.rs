//! Paper → code map: where each part of the ICPP 2011 paper lives in this
//! workspace.
//!
//! | Paper | Code |
//! |---|---|
//! | §I Introduction — GPU-less nodes use remote GPUs transparently | [`crate::api::CudaRuntime`] (the illusion), [`crate::client::RemoteRuntime`] / [`crate::api::LocalRuntime`] (the two realities) |
//! | §III rCUDA architecture, Fig. 1 (client/server over TCP) | [`crate::server::RcudaDaemon`] + [`crate::session::Session`]`::builder().connect(Endpoint::Tcp(..))` |
//! | §III "first 32 bits identify the function" | [`crate::proto::FunctionId`], [`crate::proto::Request`] |
//! | §III Table I message breakdown | [`crate::proto::sizes::OpKind`] (accounting), [`crate::proto::Request::wire_bytes`] (realization) |
//! | §III Fig. 2, the seven execution phases | [`crate::api::run_matmul_bytes`], [`crate::api::run_fft_bytes`] |
//! | §III per-execution server process + new GPU context | [`crate::server::serve_connection`] (one context per session), [`crate::gpu::GpuContext`] |
//! | §IV-A GigaE characterization, `f(n) = 8.9n − 0.3` | [`crate::netsim::GigaEModel`] |
//! | §IV-A 40GI characterization, `g(n) = 0.7n + 2.8` | [`crate::netsim::Ib40GModel`] |
//! | §IV-A ping-pong methodology (avg 250 / min 100) | [`crate::netsim::PingPong`] |
//! | §IV-A Nagle's algorithm disabled | [`crate::transport::TcpTransport`] (`TCP_NODELAY`), `GigaEModel::with_nagle` (ablation) |
//! | §IV-B case studies (MM, batched 512-pt FFT) | [`crate::core::CaseStudy`], [`crate::kernels`] |
//! | §IV-B Volkov SGEMM / MKL / FFTW | [`crate::kernels::sgemm_tiled_gpu`] / [`crate::kernels::CpuSgemm`] / [`crate::kernels::Fft`] |
//! | Table II per-call transfer times | `rcuda_model::tables::table2` |
//! | Table III / Table V per-copy payload times | `rcuda_model::tables::table3` / `table5` |
//! | §V fixed-time extraction + estimation | [`crate::model::fixed_time`], [`crate::model::estimate`] |
//! | §V cross-validation (Table IV) | [`crate::model::cross_validate`], `rcuda_model::tables::table4` |
//! | §V "measured" columns (no hardware here) | [`crate::model::SimulatedTestbed`] calibrated by [`crate::model::Calibration`] |
//! | §VI target networks (10GE/10GI/Myr/F-HT/A-HT) | [`crate::netsim::NetworkId::TARGETS`], [`crate::netsim::BandwidthModel`] |
//! | §VI-B Table VI / Figs. 5–6 | `rcuda_model::tables::table6`, `rcuda_model::figures` |
//! | §VI-B local GPU loses at m=4096 (context pre-init) | [`crate::gpu::GpuDevice::create_context`]'s `preinitialized` flag; ablation bench |
//! | §VII future work: async transfers | streams/events in [`crate::api::CudaRuntime`]; [`crate::model::estimate_async`] |
//! | §VII future work: contention | [`crate::netsim::SharedLink`] |
//! | §VII future work: multi-GPU scheduling | [`crate::server::GpuPool`] |
//! | §VII future work: "exact amount of GPUs necessary" | [`crate::model::plan_capacity`] |
//! | §VII future work: topologies | [`crate::netsim::Topology`], [`crate::netsim::TopologyNetwork`] |
//! | §VII future work: more applications | `rcuda_kernels::nbody` + the workload-agnostic planner ([`crate::model::estimate::estimate_bytes`]) |
//!
//! Regeneration entry point for every table and figure:
//! `cargo run -p rcuda-bench --bin tables`; comparisons against the paper's
//! printed values: `tables -- compare` (summarized in `EXPERIMENTS.md`).
