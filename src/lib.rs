//! # rcuda-rs
//!
//! A Rust reproduction of **"Performance of CUDA Virtualized Remote GPUs in
//! High Performance Clusters"** (Duato, Peña, Silla, Mayo, Quintana-Ortí —
//! ICPP 2011): the rCUDA GPU-remoting middleware, a simulated CUDA device
//! and interconnect models standing in for the paper's testbed, and the
//! network performance-estimation model that is the paper's contribution.
//!
//! ## Quick start
//!
//! ```
//! use rcuda::session;
//! use rcuda::api::{run_matmul_bytes, CudaRuntime};
//!
//! // A remote GPU over a simulated 40 Gbps InfiniBand link:
//! use rcuda::session::{Endpoint, Session};
//! let mut sess = Session::builder()
//!     .connect(Endpoint::Simulated(rcuda::netsim::NetworkId::Ib40G))
//!     .unwrap();
//! let m = 16u32;
//! let a: Vec<u8> = vec![0u8; (m * m * 4) as usize];
//! let b = a.clone();
//! let clock = std::sync::Arc::clone(sess.clock());
//! let report = run_matmul_bytes(&mut *sess, &*clock, m, &a, &b).unwrap();
//! assert_eq!(report.output.len(), a.len());
//! sess.finish();
//! ```
//!
//! See the `examples/` directory for the case studies, the network planner,
//! and multi-client GPU sharing; `rcuda-bench`'s `tables` binary regenerates
//! every table and figure of the paper.

#![deny(missing_docs)]

pub use rcuda_api as api;
pub use rcuda_broker as broker;
pub use rcuda_client as client;
pub use rcuda_core as core;
pub use rcuda_gpu as gpu;
pub use rcuda_kernels as kernels;
pub use rcuda_model as model;
pub use rcuda_netsim as netsim;
pub use rcuda_obs as obs;
pub use rcuda_proto as proto;
pub use rcuda_server as server;
pub use rcuda_transport as transport;
pub use rcuda_workloads as workloads;

pub mod paper_map;
pub mod session;

pub use broker::{Broker, BrokerBuilder};
pub use server::{DaemonBuilder, RcudaDaemon};
pub use session::{Connector, Endpoint, Session};
